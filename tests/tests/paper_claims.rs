//! Integration tests for the paper's headline claims, exercised across the
//! whole stack (workload → power → market → simulator).

use mpr_sim::Algorithm;
use mpr_tests::{simulate, test_trace};

/// Section V-B / Fig. 9(a): EQL pays the highest cost; MPR-INT tracks OPT;
/// MPR-STAT sits in between.
#[test]
fn cost_ordering_matches_paper() {
    let trace = test_trace(7.0, 11);
    let cost = |alg| simulate(&trace, alg, 15.0).cost_core_hours;
    let opt = cost(Algorithm::Opt);
    let eql = cost(Algorithm::Eql);
    let stat = cost(Algorithm::MprStat);
    let int = cost(Algorithm::MprInt);
    assert!(opt > 0.0, "the scenario must produce overloads");
    assert!(
        eql > 1.3 * opt,
        "EQL ({eql:.0}) must be far above OPT ({opt:.0})"
    );
    assert!(
        int <= 1.15 * opt,
        "MPR-INT ({int:.0}) must track OPT ({opt:.0})"
    );
    assert!(
        stat >= 0.99 * opt,
        "nothing beats OPT; MPR-STAT = {stat:.0}"
    );
    assert!(stat < eql, "MPR-STAT must beat oblivious EQL");
}

/// Section V-C / Fig. 11(a): users always receive more reward than their
/// performance-loss cost — under both market variants and several seeds.
#[test]
fn users_always_profit() {
    for seed in [1u64, 2, 3] {
        let trace = test_trace(5.0, seed);
        for alg in [Algorithm::MprStat, Algorithm::MprInt] {
            let r = simulate(&trace, alg, 15.0);
            if let Some(pct) = r.reward_pct_of_cost() {
                assert!(
                    pct > 100.0,
                    "{alg:?} seed {seed}: reward {pct:.1}% of cost must exceed 100%"
                );
            }
        }
    }
}

/// Section V-C / Fig. 11(b): the manager's capacity gain is orders of
/// magnitude above the reward payoff at moderate oversubscription.
#[test]
fn manager_gain_dwarfs_payoff() {
    let trace = test_trace(7.0, 11);
    let r = simulate(&trace, Algorithm::MprStat, 10.0);
    let ratio = r.gain_over_reward().expect("rewards were paid");
    assert!(
        ratio > 10.0,
        "gain/reward = {ratio:.1} should be orders of magnitude"
    );
}

/// Fig. 8(a): the overload fraction grows super-linearly with the
/// oversubscription level.
#[test]
fn overload_grows_superlinearly() {
    let trace = test_trace(7.0, 11);
    let ov: Vec<f64> = [5.0, 10.0, 20.0]
        .iter()
        .map(|&p| simulate(&trace, Algorithm::Opt, p).overload_time_pct())
        .collect();
    assert!(ov[0] < ov[1] && ov[1] < ov[2]);
    // Doubling 5→10 and 10→20 more than doubles the overload share.
    assert!(ov[1] > 1.5 * ov[0], "{ov:?}");
    assert!(ov[2] > 1.5 * ov[1], "{ov:?}");
}

/// Fig. 9(b): the runtime impact on affected jobs stays small even though
/// many jobs are affected.
#[test]
fn runtime_impact_is_marginal() {
    let trace = test_trace(7.0, 11);
    for alg in Algorithm::all() {
        let r = simulate(&trace, alg, 10.0);
        assert!(
            r.avg_runtime_increase_pct < 4.0,
            "{}: runtime increase {:.2}% too large",
            r.algorithm,
            r.avg_runtime_increase_pct
        );
    }
}

/// Fig. 15: with GPU profiles, performance-oblivious EQL pushes fragile
/// apps (Jacobi/TeaLeaf) outside their feasible range at 20 %
/// oversubscription, while the market algorithms stay feasible.
#[test]
fn eql_breaks_on_fragile_gpu_apps() {
    use mpr_sim::{SimConfig, Simulation};
    let trace = test_trace(7.0, 11);
    let gpu = mpr_apps::gpu_profiles();
    let run =
        |alg| Simulation::new(&trace, SimConfig::new(alg, 20.0).with_profiles(gpu.clone())).run();
    let eql = run(Algorithm::Eql);
    assert!(
        eql.unmet_emergencies > 0,
        "EQL must violate fragile apps' operating ranges"
    );
    let stat = run(Algorithm::MprStat);
    assert!(
        stat.cost_core_hours < eql.cost_core_hours,
        "market must beat EQL on GPUs: {} vs {}",
        stat.cost_core_hours,
        eql.cost_core_hours
    );
}

/// Fig. 10(a): MPR-STAT clears a 30,000-job market in well under a second.
#[test]
fn static_market_clears_30k_jobs_subsecond() {
    use mpr_core::bidding::StaticStrategy;
    use mpr_core::{Participant, ScaledCost, StaticMarket};
    let profiles = mpr_apps::cpu_profiles();
    let participants: Vec<Participant> = (0..30_000u64)
        .map(|i| {
            let p = &profiles[(i as usize) % profiles.len()];
            let cost = ScaledCost::new(p.cost_model(1.0), 8.0);
            Participant::new(
                i,
                StaticStrategy::Cooperative.supply_for(&cost).unwrap(),
                mpr_core::Watts::new(p.unit_dynamic_power_w()),
            )
        })
        .collect();
    let attainable: mpr_core::Watts = participants.iter().map(Participant::max_power).sum();
    let market = StaticMarket::new(participants);
    let t0 = std::time::Instant::now();
    let clearing = market.clear(attainable * 0.4).unwrap();
    let elapsed = t0.elapsed();
    assert!(clearing.met_target());
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "clearing took {elapsed:?}, expected < 1 s"
    );
}

/// Fig. 10(b): MPR-INT's iteration count stays flat as jobs scale 10× twice.
#[test]
fn interactive_iterations_flat_in_scale() {
    use mpr_core::{BiddingAgent, InteractiveConfig, InteractiveMarket, NetGainAgent, ScaledCost};
    let profiles = mpr_apps::cpu_profiles();
    let mut iters = Vec::new();
    for n in [10usize, 100, 1000] {
        let agents: Vec<Box<dyn BiddingAgent>> = (0..n)
            .map(|i| {
                let p = &profiles[i % profiles.len()];
                Box::new(NetGainAgent::new(
                    i as u64,
                    ScaledCost::new(p.cost_model(1.0), 8.0),
                    mpr_core::Watts::new(p.unit_dynamic_power_w()),
                )) as _
            })
            .collect();
        let attainable: f64 = agents
            .iter()
            .map(|a| a.delta_max() * a.watts_per_unit())
            .sum();
        let mut m = InteractiveMarket::new(agents, InteractiveConfig::default());
        let out = m.clear(mpr_core::Watts::new(0.3 * attainable)).unwrap();
        assert!(out.converged);
        iters.push(out.clearing.iterations());
    }
    let spread = *iters.iter().max().unwrap() as f64 / *iters.iter().min().unwrap() as f64;
    assert!(spread < 2.5, "iterations not flat: {iters:?}");
}
