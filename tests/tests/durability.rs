//! Acceptance tests for the crash-durable market ledger (ISSUE 7): a run
//! journaled to a write-ahead ledger, killed at an arbitrary slot and
//! recovered from checkpoint + ledger replay must produce a `SimReport`
//! bit-identical to the uninterrupted run; payments must be applied
//! exactly once no matter how often the journal is replayed; and the
//! intentionally unsound `--wal-fsync never` policy must be *caught* by
//! the acknowledgement accounting the chaos `durability-commit` oracle
//! checks.

use mpr_durable::FsyncPolicy;
use mpr_sim::{run_durable, Algorithm, DiskPlan, DurabilityPlan, DurableRun, SimConfig, SimReport};
use mpr_tests::test_trace;
use proptest::prelude::*;

/// Strips the durability totals so a recovered report can be compared
/// bit-for-bit against a plain (non-journaled) run.
fn without_durability(report: &SimReport) -> SimReport {
    let mut r = report.clone();
    r.durability = None;
    r
}

fn durable(cfg: &SimConfig, days: f64, seed: u64) -> DurableRun {
    let trace = test_trace(days, seed);
    run_durable(&trace, cfg.clone()).expect("durable run")
}

fn baseline(cfg: &SimConfig, days: f64, seed: u64) -> SimReport {
    let trace = test_trace(days, seed);
    mpr_sim::Simulation::new(&trace, cfg.clone()).run()
}

/// The kill/recover matrix: several kill points × several seeds, each
/// recovered run bit-identical to the uninterrupted one, payments exactly
/// once, replay never diverging.
#[test]
fn kill_recover_matrix_is_bit_identical() {
    for &seed in &[3u64, 11] {
        for &kill_at in &[1u64, 17, 120] {
            let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
                .with_seed(seed)
                .with_durability(DurabilityPlan::kill_at(kill_at));
            let full = baseline(&cfg, 2.0, seed);
            let run = durable(&cfg, 2.0, seed);
            assert_eq!(
                without_durability(&run.report),
                full,
                "seed {seed} kill {kill_at}: recovered report must be bit-identical"
            );
            let totals = run.report.durability.expect("durability totals");
            assert_eq!(
                totals.replay_divergence, 0,
                "seed {seed} kill {kill_at}: replay must match the journal"
            );
            assert_eq!(
                totals.ledger_reward_core_hours.to_bits(),
                run.report.reward_core_hours.to_bits(),
                "seed {seed} kill {kill_at}: ledger payments must equal the report reward"
            );
            assert!(!totals.safe_mode, "recovery must not escalate");
        }
    }
}

/// An uninterrupted journaled run changes nothing about the report and
/// accounts every payment in the ledger.
#[test]
fn uninterrupted_journaled_run_matches_plain_run() {
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
        .with_seed(7)
        .with_durability(DurabilityPlan::default());
    let full = baseline(&cfg, 2.0, 7);
    let run = durable(&cfg, 2.0, 7);
    assert_eq!(without_durability(&run.report), full);
    let totals = run.report.durability.expect("durability totals");
    assert_eq!(
        totals.ledger_reward_core_hours.to_bits(),
        run.report.reward_core_hours.to_bits()
    );
    assert_eq!(totals.duplicate_payments_suppressed, 0);
    assert!(
        totals.records_journaled > 0,
        "market events must be journaled"
    );
    assert!(!totals.ledger_wedged);
}

/// Replaying the journal on top of recomputed slots never double-pays:
/// every recomputed payment for an already-journaled slot is suppressed as
/// a duplicate, and the final ledger total still equals the report reward
/// bit-for-bit.
#[test]
fn double_replay_never_double_pays() {
    let seed = 3u64;
    // Kill a few slots into the first emergency with a sparse checkpoint
    // cadence, so the replay window (restore point -> last commit) spans
    // journaled payments that recovery recomputes.
    let probe = baseline(
        &SimConfig::new(Algorithm::MprStat, 15.0).with_seed(seed),
        2.0,
        seed,
    );
    let declare = probe
        .events
        .iter()
        .find(|e| e.kind == mpr_sim::EmergencyEventKind::Declare)
        .expect("probe run must declare an emergency");
    let slot_secs = SimConfig::new(Algorithm::MprStat, 15.0).slot_secs;
    let kill_at = (declare.t_secs / slot_secs) as u64 + 6;
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
        .with_seed(seed)
        .with_durability(DurabilityPlan {
            checkpoint_every: 64,
            ..DurabilityPlan::kill_at(kill_at)
        });
    let run = durable(&cfg, 2.0, seed);
    let totals = run.report.durability.expect("durability totals");
    assert!(
        run.report.reward_core_hours > 0.0,
        "need payments for this test to bite"
    );
    assert!(
        totals.duplicate_payments_suppressed > 0,
        "recomputed journaled payments must be suppressed, not re-applied"
    );
    assert_eq!(
        totals.ledger_reward_core_hours.to_bits(),
        run.report.reward_core_hours.to_bits(),
        "exactly-once accounting must hold through replay"
    );
    // Running the whole crash/recover cycle again is itself a replay:
    // identical results, no accumulated double payment.
    let again = durable(&cfg, 2.0, seed);
    assert_eq!(run.report, again.report, "durable runs are deterministic");
}

/// The planted bug: `FsyncPolicy::Never` acknowledges slots on append, so
/// a crash loses slots the manager already acknowledged — exactly the
/// invariant violation the chaos `durability-commit` oracle asserts on.
/// Recovery still converges to the bit-identical report (the engine is
/// deterministic), but the broken acknowledgement is visible in the
/// totals.
#[test]
fn fsync_never_loses_acknowledged_slots() {
    let mut caught = false;
    for seed in [3u64, 5, 11, 13] {
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
            .with_seed(seed)
            .with_durability(DurabilityPlan {
                fsync: FsyncPolicy::Never,
                ..DurabilityPlan::kill_at(150)
            });
        let full = baseline(&cfg, 2.0, seed);
        let run = durable(&cfg, 2.0, seed);
        assert_eq!(
            without_durability(&run.report),
            full,
            "seed {seed}: even under fsync=never recovery recomputes correctly"
        );
        let totals = run.report.durability.expect("durability totals");
        let acked = totals.acked_slot_before_crash;
        let recovered = totals.recovered_commit_slot;
        if acked > recovered {
            caught = true;
        }
    }
    assert!(
        caught,
        "fsync=never must lose acknowledged slots for at least one seed \
         (durability-commit violation)"
    );
}

/// Under the sound policies the acknowledgement is honest: nothing the
/// manager acknowledged is ever lost by a crash.
#[test]
fn sound_policies_never_lose_acknowledged_slots() {
    for fsync in [FsyncPolicy::Always, FsyncPolicy::EveryRecords(4)] {
        for seed in [3u64, 11] {
            let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
                .with_seed(seed)
                .with_durability(DurabilityPlan {
                    fsync,
                    ..DurabilityPlan::kill_at(150)
                });
            let run = durable(&cfg, 2.0, seed);
            let totals = run.report.durability.expect("durability totals");
            assert!(
                totals.recovered_commit_slot >= totals.acked_slot_before_crash,
                "{fsync}: acknowledged slots must survive the crash"
            );
        }
    }
}

/// The recovered WAL image is a valid, scannable ledger whose payment
/// records sum (bit-for-bit) to the report's reward — `mpr ledger verify`
/// runs this same check offline.
#[test]
fn recovered_wal_image_is_scannable_and_complete() {
    let seed = 3u64;
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
        .with_seed(seed)
        .with_durability(DurabilityPlan::kill_at(100));
    let run = durable(&cfg, 2.0, seed);
    let scan = mpr_durable::scan(&run.wal_image, Some(seed));
    assert!(scan.corruption.is_none(), "recovered image must be clean");
    assert_eq!(scan.truncated_bytes, 0);
    let mut ledger_reward = 0.0f64;
    for record in &scan.records {
        if let Some(mpr_sim::LedgerEvent::Payment {
            amount_core_hours, ..
        }) = mpr_sim::LedgerEvent::decode(record.kind, &record.payload)
        {
            ledger_reward += amount_core_hours;
        }
    }
    assert_eq!(
        ledger_reward.to_bits(),
        run.report.reward_core_hours.to_bits(),
        "offline ledger scan must reproduce the reward total"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Recovery equivalence for an arbitrary kill point under active disk
    /// faults (torn writes + failed fsyncs): whatever survives the crash,
    /// the recovered report is bit-identical to the uninterrupted run and
    /// no payment is ever double-applied.
    #[test]
    fn arbitrary_kill_point_recovers_bit_identical(
        kill_at in 1u64..240,
        seed in 1u64..6,
        torn in 0.0f64..0.3,
        fsync_fail in 0.0f64..0.2,
    ) {
        let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
            .with_seed(seed)
            .with_durability(DurabilityPlan {
                disk: Some(DiskPlan {
                    torn_write_prob: torn,
                    fsync_fail_prob: fsync_fail,
                    ..DiskPlan::default()
                }),
                checkpoint_every: 16,
                ..DurabilityPlan::kill_at(kill_at)
            });
        let full = baseline(&cfg, 1.0, seed);
        let run = durable(&cfg, 1.0, seed);
        prop_assert_eq!(
            without_durability(&run.report),
            full,
            "kill {} seed {}: recovery must be bit-identical",
            kill_at,
            seed
        );
        let totals = run.report.durability.expect("durability totals");
        prop_assert_eq!(
            totals.ledger_reward_core_hours.to_bits(),
            run.report.reward_core_hours.to_bits()
        );
        prop_assert_eq!(totals.replay_divergence, 0);
    }
}
