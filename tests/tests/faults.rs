//! Fault-injection integration tests: the graceful-degradation chain
//! (MPR-INT → MPR-STAT → EQL) under unresponsive, crashing and byzantine
//! participants, both at the market level and through the full simulator.

use mpr_core::bidding::cooperative_bid;
use mpr_core::{
    BiddingAgent, ByzantineAgent, ChainLevel, CrashAgent, InteractiveConfig, NetGainAgent,
    QuadraticCost, ResilientConfig, ResilientInteractiveMarket, UnresponsiveAgent, Watts,
};
use mpr_sim::{Algorithm, FaultPlan, SimConfig, Simulation};
use mpr_tests::test_trace;

const WPU: f64 = 125.0;

fn quadratic(id: u64, alpha: f64) -> NetGainAgent<QuadraticCost> {
    NetGainAgent::new(id, QuadraticCost::new(alpha, 1.0), Watts::new(WPU))
}

/// Builds the canonical faulty cohort: 20 agents, 30 % unresponsive from
/// the first round, 10 % crashing after their first answer.
fn faulty_cohort() -> ResilientInteractiveMarket {
    let mut market = ResilientInteractiveMarket::new(ResilientConfig::default());
    for id in 0..20u64 {
        let alpha = 0.5 + 0.1 * id as f64;
        let cost = QuadraticCost::new(alpha, 1.0);
        let fallback = cooperative_bid(&cost).ok();
        let inner = quadratic(id, alpha);
        let agent: Box<dyn BiddingAgent> = match id {
            0..=5 => Box::new(UnresponsiveAgent::new(inner, 0)),
            6..=7 => Box::new(CrashAgent::new(inner, 1)),
            _ => Box::new(inner),
        };
        market.register(agent, fallback);
    }
    market
}

/// The acceptance scenario: 30 % unresponsive + 10 % crashing agents in an
/// MPR-INT overload. The chain still meets the reduction target and the
/// outcome reports who was quarantined and which level cleared.
#[test]
fn chain_meets_target_with_30pct_unresponsive_10pct_crashing() {
    let mut market = faulty_cohort();
    // 900 W is comfortably attainable over the 12 healthy survivors
    // (12 × Δ × WPU = 1500 W).
    let outcome = market.clear(Watts::new(900.0)).expect("chain clears");
    assert!(
        outcome.clearing.met_target(),
        "chain must meet the target: delivered {:.1} of 900 W at level {}",
        outcome.clearing.total_power_reduction(),
        outcome.chain_level
    );
    // All six unresponsive and both crashing agents end up quarantined.
    let quarantined = outcome.quarantined_ids();
    assert_eq!(quarantined.len(), 8, "quarantined: {quarantined:?}");
    for id in 0..=7u64 {
        assert!(
            quarantined.contains(&id),
            "agent {id} should be quarantined"
        );
    }
    // The report names the level that produced the final clearing.
    assert!(outcome.chain_level >= ChainLevel::Interactive);
    assert_eq!(outcome.residual_watts, 0.0);
}

/// Deterministic replay: two identical faulty clearings agree exactly.
#[test]
fn faulty_clearing_is_deterministic() {
    let a = faulty_cohort()
        .clear(Watts::new(900.0))
        .expect("chain clears");
    let b = faulty_cohort()
        .clear(Watts::new(900.0))
        .expect("chain clears");
    assert_eq!(a.clearing.price(), b.clearing.price());
    assert_eq!(a.chain_level, b.chain_level);
    assert_eq!(a.quarantined_ids(), b.quarantined_ids());
    assert_eq!(a.retries, b.retries);
}

/// An oscillating byzantine cohort trips the convergence watchdog and the
/// market falls back within the round budget instead of spinning to
/// `max_rounds`.
#[test]
fn byzantine_oscillation_falls_back_within_round_budget() {
    let config = ResilientConfig {
        interactive: InteractiveConfig {
            max_iterations: 200,
            ..InteractiveConfig::default()
        },
        ..ResilientConfig::default()
    };
    let mut market = ResilientInteractiveMarket::new(config);
    for id in 0..10u64 {
        let cost = QuadraticCost::new(1.0, 1.0);
        let fallback = cooperative_bid(&cost).ok();
        let inner = quadratic(id, 1.0);
        let agent: Box<dyn BiddingAgent> = if id < 5 {
            Box::new(ByzantineAgent::new(inner, 50.0, true, id))
        } else {
            Box::new(inner)
        };
        market.register(agent, fallback);
    }
    let outcome = market.clear(Watts::new(600.0)).expect("chain clears");
    assert!(outcome.diverged, "watchdog should flag divergence");
    assert!(
        outcome.clearing.iterations() < 200,
        "fallback must trigger before the round budget ({} rounds used)",
        outcome.clearing.iterations()
    );
    assert!(outcome.is_degraded());
    assert!(outcome.clearing.met_target());
}

/// Beyond what any participant set can deliver, the terminal EQL level
/// caps uniformly and reports the residual instead of erroring.
#[test]
fn infeasible_target_reaches_eql_with_residual() {
    let mut market = faulty_cohort();
    // Total attainable even with every agent cooperating is 2500 W.
    let outcome = market
        .clear(Watts::new(5000.0))
        .expect("chain always answers");
    assert_eq!(outcome.chain_level, ChainLevel::EqlCapping);
    assert!(outcome.residual_watts > 0.0);
    assert!(outcome.clearing.total_power_reduction() > Watts::ZERO);
}

/// Full-simulator run of the acceptance scenario: faults injected at every
/// overload event, the system still clears every emergency, and the report
/// exposes quarantine counts and the deepest chain level reached.
#[test]
fn simulated_overloads_degrade_gracefully_and_report_it() {
    let trace = test_trace(10.0, 42);
    let config = SimConfig::new(Algorithm::MprInt, 15.0)
        .with_faults(FaultPlan::unresponsive_and_crash(0.3, 0.1))
        .with_seed(42);
    let r = Simulation::new(&trace, config.clone()).run();
    assert!(r.overload_events > 0, "scenario must actually overload");
    let d = &r.degradation;
    assert!(
        d.participants_quarantined > 0,
        "faulty agents must be quarantined"
    );
    assert!(d.deepest_chain_level.is_some(), "chain level is reported");
    assert_eq!(
        d.residual_overload_watts, 0.0,
        "the chain meets every reduction target at 15 % oversubscription"
    );
    assert!(r.jobs_total > 0 && r.jobs_completed == r.jobs_total);

    // Identical configuration replays identically, faults and all.
    let again = Simulation::new(&trace, config).run();
    assert_eq!(r, again);
}

/// Without a fault plan the degradation report stays silent.
#[test]
fn clean_simulation_reports_no_degradation() {
    let trace = test_trace(5.0, 7);
    let r = Simulation::new(&trace, SimConfig::new(Algorithm::MprInt, 15.0)).run();
    assert!(!r.degradation.any_degradation());
    assert_eq!(r.degradation.deepest_chain_level, None);
}
