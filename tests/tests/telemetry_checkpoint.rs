//! Acceptance tests for the sensor-fault telemetry pipeline and the
//! crash-safe checkpoint/resume subsystem: a run killed mid-overload —
//! including one measuring power through an actively faulty sensor — must
//! resume to a `SimReport` bit-identical to the uninterrupted run, and the
//! robust estimator must keep the reactive loop sound under noise,
//! dropout and spikes.

use std::fs;
use std::path::PathBuf;

use mpr_power::telemetry::{EstimatorConfig, SensorFaultConfig};
use mpr_sim::{
    Algorithm, CheckpointPlan, FaultPlan, RunOutcome, SimConfig, SimReport, Simulation,
    TelemetryConfig,
};
use mpr_tests::test_trace;

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpr_accept_{}_{tag}.ckpt", std::process::id()))
}

/// The canonical noisy sensor used across these tests: Gaussian noise plus
/// heavy dropout plus occasional spikes — all three fault processes active.
fn noisy_sensor() -> SensorFaultConfig {
    SensorFaultConfig {
        noise_sigma_frac: 0.02,
        dropout_prob: 0.3,
        spike_prob: 0.02,
        ..SensorFaultConfig::default()
    }
}

/// Kills a checkpointed run at `kill_at`, resumes it, and asserts the
/// resumed report equals the uninterrupted run bit-for-bit.
fn assert_kill_resume_identity(cfg: SimConfig, tag: &str, kill_at: usize) {
    let trace = test_trace(5.0, 3);
    let full = Simulation::new(&trace, cfg.clone()).run();

    let path = ckpt_path(tag);
    let sim = Simulation::new(&trace, cfg);
    let plan = CheckpointPlan::every(&path, 300).with_kill_at(kill_at);
    match sim.run_with_checkpoints(&plan).expect("checkpointed run") {
        RunOutcome::Killed {
            at_slot,
            checkpoint,
        } => {
            assert_eq!(at_slot, kill_at);
            assert_eq!(checkpoint, path);
        }
        RunOutcome::Completed(_) => panic!("kill point at slot {kill_at} must fire"),
    }
    let resumed = sim.resume(&path).expect("resume from checkpoint");
    assert_eq!(
        resumed, full,
        "resumed report must be bit-identical to the uninterrupted run"
    );
    let _ = fs::remove_file(&path);
}

/// Finds a slot where the run is inside an emergency, so the kill point
/// lands mid-overload (the acceptance criterion's hard case).
fn slot_during_emergency(report: &SimReport, slot_secs: f64) -> usize {
    let declare = report
        .events
        .iter()
        .find(|e| e.kind == mpr_sim::EmergencyEventKind::Declare)
        .expect("run must declare at least one emergency");
    ((declare.t_secs / slot_secs) as usize) + 2
}

#[test]
fn kill_mid_overload_and_resume_is_bit_identical() {
    let trace = test_trace(5.0, 3);
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0);
    let probe = Simulation::new(&trace, cfg.clone()).run();
    assert!(probe.overload_events > 0, "need an overload to kill inside");
    let kill_at = slot_during_emergency(&probe, cfg.slot_secs);
    assert_kill_resume_identity(cfg, "mid_overload", kill_at);
}

#[test]
fn kill_mid_overload_under_active_sensor_faults_is_bit_identical() {
    // The acceptance criterion: noise + dropout active during an overload
    // event, killed mid-emergency, resumed — byte-identical SimReport.
    let trace = test_trace(5.0, 3);
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
        .with_telemetry(TelemetryConfig::with_faults(noisy_sensor()));
    let probe = Simulation::new(&trace, cfg.clone()).run();
    assert!(
        probe.overload_events > 0,
        "noisy run must still declare overloads"
    );
    let health = probe.telemetry.expect("telemetry health recorded");
    assert!(health.samples_missed > 0, "dropout must be active");
    let kill_at = slot_during_emergency(&probe, cfg.slot_secs);
    assert_kill_resume_identity(cfg, "noisy_mid_overload", kill_at);
}

#[test]
fn kill_resume_identity_holds_for_interactive_market_with_agent_faults() {
    // Checkpointing composes with PR 1's fault-injection plan: the
    // per-event fault RNG is derived from (seed, event ordinal), both of
    // which are checkpointed state.
    let cfg = SimConfig::new(Algorithm::MprInt, 15.0)
        .with_faults(FaultPlan::unresponsive_and_crash(0.3, 0.1))
        .with_telemetry(TelemetryConfig::with_faults(noisy_sensor()));
    assert_kill_resume_identity(cfg, "int_faults", 2400);
}

#[test]
fn degradation_chain_composes_with_noisy_telemetry() {
    // Satellite regression: estimated (noisy) reduction targets flow into
    // the resilient market's degradation chain. The estimator's
    // conservative upper bound can ask for more reduction than the true
    // power requires — occasionally more than the jobs can physically
    // deliver — so a residual is legitimate, but it must be reported
    // exactly: only ever after the chain's terminal EQL level handed out
    // everything attainable, never silently dropped before that.
    let trace = test_trace(5.0, 3);
    let r = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprInt, 15.0)
            .with_faults(FaultPlan::unresponsive_and_crash(0.3, 0.1))
            .with_telemetry(TelemetryConfig::with_faults(SensorFaultConfig {
                dropout_prob: 0.3,
                ..SensorFaultConfig::default()
            })),
    )
    .run();
    assert!(
        r.overload_events > 0,
        "need overloads to exercise the chain"
    );
    assert!(
        r.degradation.participants_quarantined > 0,
        "agent faults must quarantine someone"
    );
    let d = &r.degradation;
    assert!(
        d.residual_overload_watts.is_finite() && d.residual_overload_watts >= 0.0,
        "residual must be reported as a finite non-negative shortfall"
    );
    if d.residual_overload_watts > 0.0 {
        assert!(
            d.eql_cappings > 0,
            "a shortfall may only remain after the terminal EQL level ran"
        );
    }
    if r.unmet_emergencies > 0 {
        assert!(
            d.eql_cappings > 0,
            "an unmet emergency implies the chain was walked to the end"
        );
    }
    assert_eq!(r.jobs_completed, r.jobs_total);
    let health = r.telemetry.expect("health recorded");
    assert!(health.samples_missed > 0, "dropout must actually drop");
}

#[test]
fn robust_estimator_beats_raw_feed_on_spiky_sensor() {
    // Ablation: the same spiky sensor drives the controller either raw
    // (pass-through estimator) or through the robust estimator. The
    // robust pipeline must not declare more emergencies than the raw one
    // — spike rejection can only remove false alarms.
    let trace = test_trace(5.0, 3);
    let spiky = SensorFaultConfig {
        spike_prob: 0.05,
        ..SensorFaultConfig::default()
    };
    let raw = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 5.0).with_telemetry(TelemetryConfig {
            sensor: spiky,
            estimator: EstimatorConfig::passthrough(),
        }),
    )
    .run();
    let robust = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 5.0).with_telemetry(TelemetryConfig::with_faults(spiky)),
    )
    .run();
    assert!(
        robust.overload_events <= raw.overload_events,
        "robust ({}) must not alarm more than raw ({})",
        robust.overload_events,
        raw.overload_events
    );
    let health = robust.telemetry.expect("health recorded");
    assert!(
        health.outliers_rejected > 0,
        "5% spikes over a 5-day run must trip the outlier gate"
    );
}

#[test]
fn telemetry_reports_are_deterministic_across_checkpoint_cadences() {
    // The checkpoint cadence itself must not perturb the simulation:
    // different cadences, same kill-free run, same report.
    let trace = test_trace(3.0, 7);
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
        .with_telemetry(TelemetryConfig::with_faults(noisy_sensor()));
    let plain = Simulation::new(&trace, cfg.clone()).run();
    for (i, every) in [200usize, 700].into_iter().enumerate() {
        let path = ckpt_path(&format!("cadence_{i}"));
        let sim = Simulation::new(&trace, cfg.clone());
        let outcome = sim
            .run_with_checkpoints(&CheckpointPlan::every(&path, every))
            .expect("checkpointed run");
        assert_eq!(
            outcome.into_report().expect("completed"),
            plain,
            "cadence {every} perturbed the run"
        );
        let _ = fs::remove_file(&path);
    }
}
