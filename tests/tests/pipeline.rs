//! End-to-end pipeline tests: SWF round-trips into the simulator,
//! conservation/accounting invariants, and determinism across the stack.

use mpr_sim::{Algorithm, CostNoise, SimConfig, Simulation};
use mpr_tests::{simulate, test_trace, to_swf};
use mpr_workload::swf;

/// A generated trace survives an SWF round-trip and simulates identically.
#[test]
fn swf_roundtrip_preserves_simulation() {
    let original = test_trace(2.0, 5);
    let text = to_swf(&original);
    let parsed = swf::parse_swf(&text, original.name(), Some(original.total_cores()))
        .expect("round-trip parse");
    assert_eq!(parsed.len(), original.len());
    assert_eq!(parsed.total_cores(), original.total_cores());

    let a = simulate(&original, Algorithm::MprStat, 15.0);
    let b = simulate(&parsed, Algorithm::MprStat, 15.0);
    // SWF stores integer seconds; job timing rounds down, so compare the
    // aggregate outcomes loosely.
    assert_eq!(a.jobs_total, b.jobs_total);
    let rel = (a.cost_core_hours - b.cost_core_hours).abs() / a.cost_core_hours.max(1e-9);
    assert!(rel < 0.05, "cost drifted {rel:.3} across the round-trip");
}

/// Accounting invariants that must hold for every algorithm.
#[test]
fn accounting_invariants() {
    let trace = test_trace(5.0, 7);
    for alg in Algorithm::all() {
        let r = simulate(&trace, alg, 15.0);
        assert_eq!(r.jobs_total, r.jobs_completed, "{alg:?}: all jobs finish");
        assert!(r.jobs_affected <= r.jobs_total);
        assert!(r.overload_slots <= r.total_slots);
        assert!(r.reduction_core_hours >= 0.0);
        assert!(r.cost_core_hours >= 0.0);
        // Per-profile breakdowns sum to the totals.
        let red: f64 = r.per_profile.values().map(|s| s.reduction_core_hours).sum();
        let cost: f64 = r.per_profile.values().map(|s| s.cost_core_hours).sum();
        assert!((red - r.reduction_core_hours).abs() < 1e-6);
        assert!((cost - r.cost_core_hours).abs() < 1e-6);
        // Non-market algorithms pay nothing.
        if !alg.is_market() {
            assert_eq!(r.reward_core_hours, 0.0);
        }
    }
}

/// The whole pipeline is deterministic: trace generation, profile
/// assignment, markets and accounting.
#[test]
fn full_pipeline_determinism() {
    let t1 = test_trace(3.0, 9);
    let t2 = test_trace(3.0, 9);
    assert_eq!(t1, t2);
    let r1 = simulate(&t1, Algorithm::MprInt, 15.0);
    let r2 = simulate(&t2, Algorithm::MprInt, 15.0);
    assert_eq!(r1, r2);
}

/// Random cost-model noise leaves the realized cost essentially unchanged
/// (Fig. 13(a)) and underestimation keeps users above water (Fig. 13(b)).
#[test]
fn noise_sensitivity_claims() {
    let trace = test_trace(5.0, 7);
    let clean = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0))
        .run()
        .cost_core_hours;
    let noisy = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 15.0)
            .with_cost_noise(CostNoise::Random { magnitude: 0.3 }),
    )
    .run()
    .cost_core_hours;
    let rel = (noisy - clean).abs() / clean.max(1e-9);
    assert!(rel < 0.35, "random noise moved cost by {rel:.2}");

    let under = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 15.0)
            .with_cost_noise(CostNoise::Underestimate { fraction: 0.3 }),
    )
    .run();
    let pct = under.reward_pct_of_cost().expect("cost incurred");
    // Cooperative bidding guarantees reward ≥ perceived cost; with a 30 %
    // underestimate that is ≥ 70 % of the *true* cost. (The paper reports a
    // larger margin because its baseline reward/cost ratio is higher; see
    // EXPERIMENTS.md, Fig. 13.)
    assert!(
        pct > 70.0,
        "30% underestimation keeps reward above the 70% bound, got {pct:.0}%"
    );
}

/// Lower participation shifts cost up and rewards up (Fig. 12).
#[test]
fn participation_scaling() {
    let trace = test_trace(7.0, 7);
    let at = |p: f64| {
        Simulation::new(
            &trace,
            SimConfig::new(Algorithm::MprStat, 15.0).with_participation(p),
        )
        .run()
    };
    let full = at(1.0);
    let half = at(0.5);
    // Fewer participants each shoulder more reduction: the per-participant
    // burden rises, and the manager pays a higher clearing price.
    assert!(half.cost_core_hours > 0.6 * full.cost_core_hours);
    assert!(
        half.reward_core_hours > 0.6 * full.reward_core_hours,
        "reward should not collapse: {} vs {}",
        half.reward_core_hours,
        full.reward_core_hours
    );
    // Still two orders of magnitude gain at 50% participation (paper).
    if let Some(ratio) = half.gain_over_reward() {
        assert!(ratio > 5.0, "gain ratio {ratio:.1}");
    }
}

/// The emergency machinery across crates: demand above UPS capacity
/// triggers the market, the breaker never trips, power returns to normal.
#[test]
fn emergency_lifecycle_with_breaker() {
    use mpr_core::Watts;
    use mpr_power::{BreakerState, TripCurve};

    let trace = test_trace(5.0, 7);
    let sim = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 15.0));
    let capacity = mpr_power::Oversubscription::percent(15.0).capacity(sim.reference_peak_watts());
    // A breaker rated at capacity with the paper's long-delay behaviour
    // would need ~10 sustained minutes of >20 % overload to trip; the
    // reactive loop reduces within a minute.
    let mut breaker = BreakerState::new(TripCurve::new(capacity, 600.0));
    let report = sim.run();
    assert!(report.overload_events > 0);
    // Overloads are bounded: the worst sustained overload the simulator
    // allows before reduction is one slot at the demand peak.
    let worst = Watts::new(report.peak_watts);
    assert!(!breaker.step(worst, 60.0), "one slot must not trip");
}
