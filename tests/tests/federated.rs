//! Integration tests for the hierarchical federated market: flat
//! equivalence across every clearing scheme, topology round-trips, and
//! end-to-end determinism of federated simulation runs.

use std::sync::Arc;

use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    ChainLevel, CostModel, EqlCappingMechanism, EqlMechanism, FallbackChain, InteractiveConfig,
    InteractiveMechanism, MarketInstance, MclrMechanism, Mechanism, OptMechanism, OptMethod,
    ParticipantSpec, ScaledCost, VcgMechanism, Watts,
};
use mpr_power::{HierarchicalMarket, LevelKind, PowerHierarchy, TopologySpec};
use mpr_sim::{Algorithm, SimConfig, Simulation};
use mpr_tests::test_trace;
use proptest::prelude::*;

/// A market instance every scheme can clear: cooperative standing bids
/// (MPR-STAT), cost curves (MPR-INT, OPT, VCG) and core counts (EQL).
fn full_instance(jobs: usize) -> MarketInstance {
    let profiles = mpr_apps::cpu_profiles();
    (0..jobs)
        .map(|i| {
            let cost = Arc::new(ScaledCost::new(
                profiles[i % profiles.len()].cost_model(1.0),
                8.0,
            ));
            let supply = StaticStrategy::Cooperative
                .supply_for(cost.as_ref())
                .expect("catalog costs are valid");
            ParticipantSpec::new(i as u64, cost.delta_max(), Watts::new(125.0))
                .with_bid(supply.bid())
                .with_cores(8.0)
                .with_cost(cost)
        })
        .collect()
}

/// A tree whose only binding constraint is the root: two racks with huge
/// local capacity under one ATS capped `target` below the load.
fn root_constrained_tree(load: f64, target: f64) -> (PowerHierarchy, usize, usize) {
    let mut h = PowerHierarchy::new();
    let ats = h.add_root("ats", LevelKind::Ats, Watts::new(load - target));
    let ups = h
        .add_child("ups", LevelKind::Ups, Watts::new(1e12), ats)
        .unwrap();
    let pdu = h
        .add_child("pdu", LevelKind::Pdu, Watts::new(1e12), ups)
        .unwrap();
    let rack_a = h
        .add_child("rack-a", LevelKind::Rack, Watts::new(1e12), pdu)
        .unwrap();
    let rack_b = h
        .add_child("rack-b", LevelKind::Rack, Watts::new(1e12), pdu)
        .unwrap();
    h.set_load(rack_a, Watts::new(load * 0.5)).unwrap();
    h.set_load(rack_b, Watts::new(load * 0.5)).unwrap();
    (h, rack_a, rack_b)
}

/// Every paper scheme as a fresh boxed mechanism, by name.
fn scheme(name: &str) -> Box<dyn Mechanism> {
    match name {
        "mpr-stat" => Box::new(MclrMechanism::strict()),
        "mpr-int" => Box::new(InteractiveMechanism::strict(InteractiveConfig::default())),
        "opt" => Box::new(OptMechanism::strict(OptMethod::Auto)),
        "eql" => Box::new(EqlMechanism),
        "vcg" => Box::new(VcgMechanism::strict(OptMethod::Auto)),
        "chain" => Box::new(
            FallbackChain::new()
                .stage(
                    ChainLevel::Interactive,
                    InteractiveMechanism::best_effort(InteractiveConfig::default()),
                )
                .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
                .stage(ChainLevel::EqlCapping, EqlCappingMechanism),
        ),
        other => panic!("unknown scheme {other}"),
    }
}

const SCHEMES: [&str; 6] = ["mpr-stat", "mpr-int", "opt", "eql", "vcg", "chain"];

/// On a root-only-constrained tree the federated sweep runs exactly one
/// market over the identity view, and `Clearing::merge` returns it
/// verbatim — bit-identical to the flat clear, for every scheme.
fn assert_flat_equivalent(jobs: usize, target_frac: f64) {
    let inst = full_instance(jobs);
    let load = 1e6;
    let asked = inst.attainable_watts().get() * target_frac;
    let (h, rack_a, rack_b) = root_constrained_tree(load, asked);
    // The sweep derives its target as `load − capacity`, which can differ
    // from `asked` by an ULP; the flat comparator must see the exact same
    // number or bit-equality is meaningless.
    let target = load - (load - asked);
    let assignment: Vec<usize> = (0..jobs)
        .map(|i| if i % 2 == 0 { rack_a } else { rack_b })
        .collect();
    let market = HierarchicalMarket::new(&h, assignment).unwrap();
    for name in SCHEMES {
        let outcome = market
            .clear(&inst, || scheme(name))
            .unwrap_or_else(|e| panic!("{name}: federated clear failed: {e}"));
        assert_eq!(outcome.markets, 1, "{name}: one pristine root market");
        let mut flat = scheme(name);
        let expect = flat
            .clear(&inst, Watts::new(target))
            .unwrap_or_else(|e| panic!("{name}: flat clear failed: {e}"));
        assert_eq!(
            outcome.clearing.reductions(),
            expect.reductions(),
            "{name}: reductions diverge"
        );
        assert_eq!(outcome.clearing.price(), expect.price(), "{name}: price");
        assert_eq!(
            outcome.clearing.participant_prices(),
            expect.participant_prices(),
            "{name}: participant prices"
        );
        assert_eq!(
            outcome.clearing.payment_rates(),
            expect.payment_rates(),
            "{name}: payment rates"
        );
        assert_eq!(
            outcome.clearing.diagnostics(),
            expect.diagnostics(),
            "{name}: diagnostics"
        );
    }
}

#[test]
fn every_scheme_is_flat_equivalent_on_a_root_constrained_tree() {
    assert_flat_equivalent(24, 0.3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The flat-equivalence regression across instance sizes and targets
    /// (feasible ones: strict mechanisms refuse infeasible asks).
    #[test]
    fn flat_equivalence_holds_across_sizes_and_targets(
        jobs in 4usize..28,
        target_frac in 0.05f64..0.5,
    ) {
        assert_flat_equivalent(jobs, target_frac);
    }
}

/// The topology spec round-trips through its JSON codec with a stable
/// fingerprint, and any capacity change moves the fingerprint.
#[test]
fn topology_round_trips_and_fingerprints_capacity_changes() {
    let spec = TopologySpec::parse(include_str!("../../examples/tree.json")).unwrap();
    let reparsed = TopologySpec::parse(&spec.to_json()).unwrap();
    assert_eq!(spec, reparsed);
    assert_eq!(spec.fingerprint(), reparsed.fingerprint());

    let mut tweaked = spec.clone();
    tweaked.nodes[1].capacity = Watts::new(spec.nodes[1].capacity.get() * 0.5);
    assert_ne!(spec.fingerprint(), tweaked.fingerprint());

    // The spec materializes into a hierarchy whose racks carry the jobs.
    let h = spec.to_hierarchy().unwrap();
    assert_eq!(h.len(), spec.nodes.len());
    assert!(!spec.rack_ids().is_empty());
    assert!(spec.root_capacity().get() > 0.0);
}

/// Two identical federated runs are bit-identical: the parallel depth
/// waves commit in deterministic (depth, id) order regardless of worker
/// interleaving, so the whole simulation reproduces. (CI additionally
/// diffs `RAYON_NUM_THREADS=1` against the default pool via the CLI.)
#[test]
fn federated_simulation_is_deterministic_end_to_end() {
    let trace = test_trace(2.0, 11);
    let spec = TopologySpec::parse(include_str!("../../examples/tree.json")).unwrap();
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec);
    let a = Simulation::new(&trace, cfg.clone()).run();
    let b = Simulation::new(&trace, cfg).run();
    let fa = a.federated.as_ref().expect("federated stats");
    let fb = b.federated.as_ref().expect("federated stats");
    assert_eq!(
        fa, fb,
        "federated accounting must reproduce bit-identically"
    );
    assert!(fa.events > 0, "the run must clear overloads federated");
    assert!(fa.markets >= fa.events);
    assert!(!fa.levels.is_empty());
    assert_eq!(
        a.reduction_core_hours.to_bits(),
        b.reduction_core_hours.to_bits()
    );
    assert_eq!(a.reward_core_hours.to_bits(), b.reward_core_hours.to_bits());
    assert_eq!(a.cost_core_hours.to_bits(), b.cost_core_hours.to_bits());
}

/// The federated path reports residuals per level and they are consistent:
/// a level's residual never exceeds its cumulative target, and the merged
/// totals absorb every level.
#[test]
fn federated_per_level_accounting_is_consistent() {
    let trace = test_trace(2.0, 11);
    let spec = TopologySpec::parse(include_str!("../../examples/tree.json")).unwrap();
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0).with_topology(spec);
    let r = Simulation::new(&trace, cfg).run();
    let fed = r.federated.as_ref().expect("federated stats");
    assert!(fed.residual_watts >= 0.0);
    for (name, lv) in &fed.levels {
        assert!(lv.markets > 0, "{name}: reported levels ran markets");
        assert!(
            lv.cleared_watts <= lv.target_watts + 1e-6,
            "{name}: cleared {} exceeds cumulative target {}",
            lv.cleared_watts,
            lv.target_watts
        );
        assert!(lv.residual_watts >= 0.0, "{name}");
    }
    let total_markets: usize = fed.levels.values().map(|l| l.markets).sum();
    assert_eq!(total_markets, fed.markets);
}
