//! Acceptance tests for the deadline-bounded bid transport under the
//! simulator: an MPR-INT run over an actively faulty virtual network must
//! report its message-layer accounting, survive a kill mid-overload with a
//! bit-identical resume, and refuse to resume under different `--net-*`
//! settings exactly like a mechanism mismatch.

use std::fs;
use std::path::PathBuf;

use mpr_sim::{Algorithm, CheckpointPlan, FaultPlan, NetPlan, RunOutcome, SimConfig, Simulation};
use mpr_tests::test_trace;

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mpr_net_{}_{tag}.ckpt", std::process::id()))
}

/// The canonical lossy network of the acceptance criteria: 30% drop, plus
/// duplication and occasional partitions so every transport code path runs.
fn lossy_net() -> NetPlan {
    NetPlan {
        drop_prob: 0.3,
        duplicate_prob: 0.1,
        partition_prob: 0.05,
        ..NetPlan::default()
    }
}

/// Kills a checkpointed run at `kill_at`, resumes it, and asserts the
/// resumed report equals the uninterrupted run bit-for-bit.
fn assert_kill_resume_identity(cfg: SimConfig, tag: &str, kill_at: usize) {
    let trace = test_trace(5.0, 3);
    let full = Simulation::new(&trace, cfg.clone()).run();

    let path = ckpt_path(tag);
    let sim = Simulation::new(&trace, cfg);
    let plan = CheckpointPlan::every(&path, 300).with_kill_at(kill_at);
    match sim.run_with_checkpoints(&plan).expect("checkpointed run") {
        RunOutcome::Killed {
            at_slot,
            checkpoint,
        } => {
            assert_eq!(at_slot, kill_at);
            assert_eq!(checkpoint, path);
        }
        RunOutcome::Completed(_) => panic!("kill point at slot {kill_at} must fire"),
    }
    let resumed = sim.resume(&path).expect("resume from checkpoint");
    assert_eq!(
        resumed, full,
        "resumed report must be bit-identical to the uninterrupted run"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn lossy_net_run_reports_transport_accounting_and_meets_targets() {
    let trace = test_trace(5.0, 3);
    let r = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprInt, 15.0).with_net(lossy_net()),
    )
    .run();
    assert!(r.overload_events > 0, "need overloads to exercise the net");
    let t = r.transport.expect("active net plan must report totals");
    assert!(t.clearings > 0);
    assert!(t.messages_dropped > 0, "30% drop must lose messages");
    assert!(t.retransmits > 0, "losses must trigger retransmits");
    // The acceptance bar: under 30% drop the resilient chain still meets
    // the power-reduction target (or reports the exact residual). On this
    // trace every target is attainable, so nothing may go unmet.
    assert_eq!(r.unmet_emergencies, 0);
    assert_eq!(r.degradation.residual_overload_watts, 0.0);
    assert_eq!(r.jobs_completed, r.jobs_total);
}

#[test]
fn kill_mid_overload_with_active_net_faults_is_bit_identical() {
    // The per-event channel RNG is derived from (seed, event ordinal), both
    // checkpointed state, so a resume replays every drop, delay, duplicate
    // and partition draw exactly.
    let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_net(lossy_net());
    assert_kill_resume_identity(cfg, "lossy", 2400);
}

#[test]
fn kill_resume_identity_holds_with_net_and_agent_faults_composed() {
    let cfg = SimConfig::new(Algorithm::MprInt, 15.0)
        .with_net(lossy_net())
        .with_faults(FaultPlan::unresponsive_and_crash(0.3, 0.1));
    assert_kill_resume_identity(cfg, "composed", 2400);
}

#[test]
fn resume_under_a_different_net_plan_is_rejected() {
    let trace = test_trace(5.0, 3);
    let path = ckpt_path("mismatch");
    let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_net(lossy_net());
    let plan = CheckpointPlan::every(&path, 300).with_kill_at(2400);
    Simulation::new(&trace, cfg)
        .run_with_checkpoints(&plan)
        .expect("checkpointed run");
    assert!(path.exists(), "kill point must leave a checkpoint behind");

    // Any change to the transport plan — fault rates, deadline, retry
    // budget, or dropping the plan entirely — must be refused like a
    // `--mechanism` mismatch, never silently resumed into different draws.
    for other in [
        SimConfig::new(Algorithm::MprInt, 15.0).with_net(NetPlan::lossy(0.2)),
        SimConfig::new(Algorithm::MprInt, 15.0).with_net(NetPlan {
            deadline_ticks: 64,
            ..lossy_net()
        }),
        SimConfig::new(Algorithm::MprInt, 15.0).with_net(NetPlan {
            max_attempts: 7,
            ..lossy_net()
        }),
        SimConfig::new(Algorithm::MprInt, 15.0),
    ] {
        assert!(
            Simulation::new(&trace, other).resume(&path).is_err(),
            "resume under a different net plan must be rejected"
        );
    }
    // The original configuration still resumes fine.
    let cfg = SimConfig::new(Algorithm::MprInt, 15.0).with_net(lossy_net());
    Simulation::new(&trace, cfg)
        .resume(&path)
        .expect("matching net plan must resume");
    let _ = fs::remove_file(&path);
}
