//! Integration tests for the extension subsystems: grid policies,
//! partitioned infrastructure, the scheduler pipeline, VCG and phases.

use std::sync::Arc;

use mpr_core::{CoreHours, Watts};
use mpr_sim::{Algorithm, PartitionPolicy, PartitionedSimulation, SimConfig, Simulation};
use mpr_tests::{simulate, test_trace};

/// Demand-response events route through the same market as overloads and
/// increase reductions/rewards during the event windows.
#[test]
fn demand_response_end_to_end() {
    use mpr_grid::{DrCapacity, DrSchedule};
    let trace = test_trace(7.0, 21);
    let probe = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 10.0));
    let base_cap = probe.reference_peak_watts() * (100.0 / 110.0);
    let schedule = DrSchedule::weekday_evenings(7.0, 2.0, base_cap * 0.12);
    let baseline = simulate(&trace, Algorithm::MprStat, 10.0);
    let dr = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 10.0)
            .with_capacity_policy(Arc::new(DrCapacity::new(base_cap, schedule))),
    )
    .run();
    assert!(dr.reduction_core_hours > baseline.reduction_core_hours);
    assert!(dr.reward_core_hours > baseline.reward_core_hours);
    assert!(dr.overload_events >= baseline.overload_events);
}

/// The carbon cap derates capacity only during dirty hours, and the
/// timeline lets an accountant price the avoided emissions.
#[test]
fn carbon_cap_end_to_end() {
    use mpr_grid::{CarbonAccountant, CarbonCap, CarbonIntensitySignal};
    let trace = test_trace(5.0, 21);
    let probe = Simulation::new(&trace, SimConfig::new(Algorithm::MprStat, 10.0));
    let base_cap = probe.reference_peak_watts() * (100.0 / 110.0);
    let signal = CarbonIntensitySignal::typical();
    let policy = Arc::new(CarbonCap::new(
        base_cap,
        signal,
        signal.dirty_threshold(),
        0.15,
    ));
    let r = Simulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 10.0)
            .with_capacity_policy(policy)
            .with_timeline(),
    )
    .run();
    let tl = r.timeline.as_ref().expect("timeline enabled");
    // Capacity varies (derated during evening ramps).
    let min_cap = tl.capacity_w.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_cap = tl.capacity_w.iter().cloned().fold(0.0, f64::max);
    assert!(min_cap < max_cap);
    assert!((min_cap - max_cap * 0.85).abs() < max_cap * 0.01);
    // Emissions accounting over the recorded power is positive and the
    // reductions avoided something.
    let acc = CarbonAccountant::new(signal);
    assert!(acc.emissions_kg(0.0, tl.slot_secs, &tl.power_w) > 0.0);
    assert!(acc.avoided_kg(0.0, tl.slot_secs, &tl.reduction_w) > 0.0);
}

/// Splitting one facility into parallel UPS domains keeps every job
/// accounted for while increasing overload churn.
#[test]
fn partitioned_simulation_conserves_jobs() {
    let trace = test_trace(5.0, 21);
    let part = PartitionedSimulation::new(
        &trace,
        SimConfig::new(Algorithm::MprStat, 15.0),
        4,
        PartitionPolicy::WidthBalanced,
    )
    .run();
    let total_jobs: usize = part.partitions.iter().map(|r| r.jobs_total).sum();
    assert_eq!(total_jobs, trace.len());
    for r in &part.partitions {
        assert_eq!(r.jobs_total, r.jobs_completed, "every partition drains");
    }
    assert!(part.cost_core_hours() >= CoreHours::ZERO);
}

/// The scheduler pipeline composes: submissions → EASY backfill → MPR
/// simulation, with capacity respected throughout.
#[test]
fn scheduler_to_simulation_pipeline() {
    use mpr_sched::{schedule, Policy, SubmittedJob};
    let generated = test_trace(3.0, 21);
    let submissions: Vec<SubmittedJob> = generated
        .jobs()
        .iter()
        .map(|j| {
            SubmittedJob::new(
                j.id,
                j.start_secs,
                j.runtime_secs,
                1.3 * j.runtime_secs,
                j.cores,
            )
        })
        .collect();
    let machine = generated.total_cores() * 3 / 4;
    let out = schedule(&submissions, machine, Policy::EasyBackfill);
    assert_eq!(out.trace.len(), generated.len());
    let report = Simulation::new(&out.trace, SimConfig::new(Algorithm::MprStat, 15.0)).run();
    assert_eq!(report.jobs_total, generated.len());
    assert_eq!(report.jobs_total, report.jobs_completed);
}

/// VCG and MPR-INT agree on the allocation (both socially optimal) while
/// VCG pays at least the users' costs.
#[test]
fn vcg_agrees_with_interactive_market() {
    use mpr_core::{
        opt, vcg, BiddingAgent, CostModel, InteractiveConfig, InteractiveMarket, NetGainAgent,
        QuadraticCost,
    };
    let costs: Vec<QuadraticCost> = [1.0, 2.0, 3.0, 5.0]
        .iter()
        .map(|&a| QuadraticCost::new(a, 2.0))
        .collect();
    let target = Watts::new(400.0);
    let opt_jobs: Vec<opt::OptJob<'_>> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| opt::OptJob::new(i as u64, c, Watts::new(125.0)))
        .collect();
    let auction = vcg::auction(&opt_jobs, target, opt::OptMethod::Auto).unwrap();

    let agents: Vec<Box<dyn BiddingAgent>> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| Box::new(NetGainAgent::new(i as u64, *c, Watts::new(125.0))) as _)
        .collect();
    let mut market = InteractiveMarket::new(agents, InteractiveConfig::default());
    let outcome = market.clear(target).unwrap();

    for (award, alloc) in auction.awards.iter().zip(outcome.clearing.allocations()) {
        assert!(
            (award.reduction - alloc.reduction).abs() < 0.05,
            "VCG {} vs market {} for job {}",
            award.reduction,
            alloc.reduction,
            award.id
        );
        assert!(award.payment >= costs[award.id as usize].cost(award.reduction) - 1e-9);
    }
}

/// Phases and α heterogeneity are deterministic and keep the user-profit
/// guarantee.
#[test]
fn phases_and_alpha_keep_guarantees() {
    let trace = test_trace(5.0, 21);
    let cfg = SimConfig::new(Algorithm::MprStat, 15.0)
        .with_phases(0.2)
        .with_alpha_spread(2.0);
    let a = Simulation::new(&trace, cfg.clone()).run();
    let b = Simulation::new(&trace, cfg).run();
    assert_eq!(a, b, "deterministic under phases + heterogeneity");
    if let Some(pct) = a.reward_pct_of_cost() {
        assert!(pct > 100.0, "cooperative users still profit: {pct:.0}%");
    }
}
