//! Acceptance tests for the chaos campaign harness: a campaign report must
//! be bit-identical regardless of worker-thread count, and the generator
//! space version baked into every chaos run must fence checkpoint resume.

use mpr_chaos::{run, CampaignConfig};
use mpr_sim::{Algorithm, CheckpointError, CheckpointPlan, RunOutcome, SimConfig, Simulation};
use mpr_tests::test_trace;

/// Satellite of the chaos tentpole: the campaign fan-out must not leak
/// scheduling order into results. One worker thread and many must render
/// byte-for-byte the same JSON and CSV — including failures and their
/// shrunk counterexamples.
#[test]
fn campaign_reports_are_bit_identical_across_thread_counts() {
    let cc = CampaignConfig {
        runs: 12,
        seed: 0xC0FFEE,
        days: 0.25,
        emergency_disabled: true, // provoke failures so shrinking runs too
        ..CampaignConfig::default()
    };
    let render = |threads: &str| {
        // The vendored rayon shim reads RAYON_NUM_THREADS at every
        // `collect`, so flipping it between campaigns takes effect. This
        // is the only test in the binary touching the variable.
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let report = run(&cc).expect("no artifact io");
        (report.to_json(), report.to_csv(), report.summary())
    };
    let single = render("1");
    let four = render("4");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(single.0, four.0, "JSON must not depend on thread count");
    assert_eq!(single.1, four.1, "CSV must not depend on thread count");
    assert_eq!(single.2, four.2, "summary must not depend on thread count");
}

/// A checkpoint written by a run tagged with one chaos generator-space
/// version must refuse to resume under another: shrunk repro artifacts
/// pin `space_version`, and a resumed run from a different space would
/// silently invalidate them.
#[test]
fn checkpoint_resume_rejects_generator_space_mismatch() {
    let trace = test_trace(3.0, 3);
    let path = std::env::temp_dir().join(format!("mpr_chaos_space_{}.ckpt", std::process::id()));
    let cfg = SimConfig::new(Algorithm::MprStat, 20.0).with_scenario_space(1);
    let sim = Simulation::new(&trace, cfg);
    let plan = CheckpointPlan::every(&path, 300).with_kill_at(600);
    match sim.run_with_checkpoints(&plan).expect("checkpointed run") {
        RunOutcome::Killed { .. } => {}
        RunOutcome::Completed(_) => panic!("kill point must fire"),
    }

    // Same config, different generator space: fingerprint mismatch.
    let other = SimConfig::new(Algorithm::MprStat, 20.0).with_scenario_space(2);
    let err = Simulation::new(&trace, other)
        .resume(&path)
        .expect_err("space-version change must fence resume");
    assert!(matches!(err, CheckpointError::ConfigMismatch), "{err:?}");

    // An untagged config (no chaos provenance) is likewise a different
    // fingerprint from a tagged one.
    let untagged = SimConfig::new(Algorithm::MprStat, 20.0);
    let err = Simulation::new(&trace, untagged)
        .resume(&path)
        .expect_err("dropping the tag must fence resume");
    assert!(matches!(err, CheckpointError::ConfigMismatch), "{err:?}");

    // The original tagged config still resumes fine.
    let again = SimConfig::new(Algorithm::MprStat, 20.0).with_scenario_space(1);
    Simulation::new(&trace, again)
        .resume(&path)
        .expect("matching space must resume");
    let _ = std::fs::remove_file(&path);
}
