//! API-contract tests across the workspace: thread-safety markers
//! (C-SEND-SYNC), error-type behaviour (C-GOOD-ERR) and trait-object
//! usability (C-OBJECT) for the public surface.

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn public_types_are_send_and_sync() {
    assert_send_sync::<mpr_core::SupplyFunction>();
    assert_send_sync::<mpr_core::LinearSupply>();
    assert_send_sync::<mpr_core::Participant>();
    assert_send_sync::<mpr_core::Clearing>();
    assert_send_sync::<mpr_core::StaticMarket>();
    assert_send_sync::<mpr_core::ClearingIndex>();
    assert_send_sync::<mpr_core::QuadraticCost>();
    assert_send_sync::<mpr_apps::AppProfile>();
    assert_send_sync::<mpr_apps::ProfileCost>();
    assert_send_sync::<mpr_power::EmergencyController>();
    assert_send_sync::<mpr_power::PowerModel>();
    assert_send_sync::<mpr_power::UpsBattery>();
    assert_send_sync::<mpr_workload::Trace>();
    assert_send_sync::<mpr_workload::TraceGenerator>();
    assert_send_sync::<mpr_sim::SimConfig>();
    assert_send_sync::<mpr_sim::SimReport>();
    assert_send_sync::<mpr_grid::CarbonIntensitySignal>();
    assert_send_sync::<mpr_grid::DrSchedule>();
    assert_send_sync::<mpr_sched::ScheduleOutcome>();
    assert_send_sync::<mpr_proto::DvfsApp>();
}

#[test]
fn error_types_behave() {
    assert_error::<mpr_core::MarketError>();
    assert_error::<mpr_apps::ProfileError>();
    assert_error::<mpr_power::HierarchyError>();
    // SWF errors wrap io::Error, which is Send + Sync.
    assert_error::<mpr_workload::swf::SwfError>();
    // Messages are lowercase and non-empty (C-GOOD-ERR).
    let msgs = [
        mpr_core::MarketError::NoParticipants.to_string(),
        mpr_apps::ProfileError::TooFewPoints.to_string(),
        mpr_power::HierarchyError::UnknownNode(1).to_string(),
    ];
    for m in msgs {
        assert!(!m.is_empty());
        assert!(m.starts_with(char::is_lowercase), "message: {m}");
        assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
    }
}

#[test]
fn key_traits_are_object_safe() {
    // CostModel, Supply, BiddingAgent and CapacityPolicy are used as trait
    // objects throughout the stack.
    let _cost: Box<dyn mpr_core::CostModel> = Box::new(mpr_core::QuadraticCost::new(1.0, 1.0));
    let _supply: Box<dyn mpr_core::Supply> =
        Box::new(mpr_core::SupplyFunction::new(1.0, 0.1).unwrap());
    let _agent: Box<dyn mpr_core::BiddingAgent> = Box::new(mpr_core::NetGainAgent::new(
        0,
        mpr_core::QuadraticCost::new(1.0, 1.0),
        mpr_core::Watts::new(125.0),
    ));
    let _policy: Box<dyn mpr_power::CapacityPolicy> =
        Box::new(mpr_power::FixedCapacity(mpr_core::Watts::new(1.0)));
}

#[test]
fn cost_models_compose_through_smart_pointers() {
    use mpr_core::CostModel;
    use std::sync::Arc;
    let arc: Arc<dyn CostModel> = Arc::new(mpr_core::QuadraticCost::new(2.0, 1.0));
    // Arc<dyn CostModel> itself implements CostModel (forwarding impls),
    // so it can be scaled like any concrete model.
    let scaled = mpr_core::ScaledCost::new(arc, 4.0);
    assert!((scaled.cost(2.0) - 4.0 * 2.0 * 0.25).abs() < 1e-12);
}
