//! Shared helpers for the cross-crate integration tests.

use mpr_sim::{Algorithm, SimConfig, SimReport, Simulation};
use mpr_workload::{ClusterSpec, Trace, TraceGenerator};

/// A small Gaia-like trace used across the integration tests.
#[must_use]
pub fn test_trace(days: f64, seed: u64) -> Trace {
    TraceGenerator::new(ClusterSpec::gaia().with_span_days(days))
        .with_seed(seed)
        .generate()
}

/// Runs a paper-default simulation.
#[must_use]
pub fn simulate(trace: &Trace, algorithm: Algorithm, oversub_pct: f64) -> SimReport {
    Simulation::new(trace, SimConfig::new(algorithm, oversub_pct)).run()
}

/// Serializes a trace into SWF text — thin alias over the library writer,
/// kept for the round-trip tests' readability.
#[must_use]
pub fn to_swf(trace: &Trace) -> String {
    mpr_workload::swf::write_swf(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let t = test_trace(1.0, 1);
        assert!(!t.is_empty());
        let swf = to_swf(&t);
        assert!(swf.lines().count() > t.len());
    }
}
